package arch

import (
	"fmt"
	"strings"
)

// QX4 returns the IBM QX4 ("Tenerife", 5 qubits) architecture of paper
// Fig. 2. Physical qubits p1..p5 of the paper are 0-based 0..4 here:
// CM = {(p2,p1),(p3,p1),(p3,p2),(p4,p3),(p4,p5),(p5,p3)}.
func QX4() *Arch {
	return MustNew("ibmqx4", 5, []Pair{
		{1, 0}, {2, 0}, {2, 1}, {3, 2}, {3, 4}, {4, 2},
	})
}

// QX2 returns the IBM QX2 ("Yorktown", 5 qubits) architecture. Same
// undirected topology family as QX4 (two triangles sharing qubit 2) with
// different CNOT directions.
func QX2() *Arch {
	return MustNew("ibmqx2", 5, []Pair{
		{0, 1}, {0, 2}, {1, 2}, {3, 2}, {3, 4}, {4, 2},
	})
}

// QX5 returns the IBM QX5 ("Rueschlikon", 16 qubits) architecture: a 2×8
// ladder with directed couplings.
func QX5() *Arch {
	return MustNew("ibmqx5", 16, []Pair{
		{1, 0}, {1, 2}, {2, 3}, {3, 4}, {3, 14}, {5, 4},
		{6, 5}, {6, 7}, {6, 11}, {7, 10}, {8, 7}, {9, 8},
		{9, 10}, {11, 10}, {12, 5}, {12, 11}, {12, 13},
		{13, 4}, {13, 14}, {15, 0}, {15, 2}, {15, 14},
	})
}

// Linear returns a linear-nearest-neighbor architecture on m qubits with
// CNOT control always on the lower index (a common abstraction in
// nearest-neighbor mapping literature).
func Linear(m int) *Arch {
	var pairs []Pair
	for i := 0; i+1 < m; i++ {
		pairs = append(pairs, Pair{i, i + 1})
	}
	return MustNew(fmt.Sprintf("linear%d", m), m, pairs)
}

// Ring returns a directed ring architecture on m qubits (control i, target
// (i+1) mod m).
func Ring(m int) *Arch {
	if m < 3 {
		panic("arch: ring needs at least 3 qubits")
	}
	var pairs []Pair
	for i := 0; i < m; i++ {
		pairs = append(pairs, Pair{i, (i + 1) % m})
	}
	return MustNew(fmt.Sprintf("ring%d", m), m, pairs)
}

// Grid returns a rows×cols grid architecture with CNOT control on the
// lexicographically smaller endpoint of each edge.
func Grid(rows, cols int) *Arch {
	if rows < 1 || cols < 1 {
		panic("arch: grid needs positive dimensions")
	}
	var pairs []Pair
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				pairs = append(pairs, Pair{id(r, c), id(r, c+1)})
			}
			if r+1 < rows {
				pairs = append(pairs, Pair{id(r, c), id(r+1, c)})
			}
		}
	}
	return MustNew(fmt.Sprintf("grid%dx%d", rows, cols), rows*cols, pairs)
}

// Names returns the canonical architecture names accepted by ByName, in
// catalog order: the named IBM devices first, then the parameterized
// families with their placeholder spellings. It is the architecture
// counterpart of the solver registry's Methods listing — CLIs print it in
// flag help and error paths, and the qxmapd service exposes it on
// GET /v1/archs.
func Names() []string {
	return []string{
		"ibmqx2", "ibmqx4", "ibmqx5", "melbourne", "tokyo",
		"heavyhex27", "heavyhex127",
		"linear<m>", "ring<m>", "grid<r>x<c>",
	}
}

// ByName returns a predefined architecture by name: "ibmqx2", "ibmqx4",
// "ibmqx5", "melbourne", "tokyo", "heavyhex27", "heavyhex127",
// "linear<m>", "ring<m>", or
// "grid<r>x<c>". An unknown name fails with an error enumerating every
// valid name, mirroring ParseMethod.
func ByName(name string) (*Arch, error) {
	switch name {
	case "ibmqx2", "qx2":
		return QX2(), nil
	case "ibmqx4", "qx4":
		return QX4(), nil
	case "ibmqx5", "qx5":
		return QX5(), nil
	case "melbourne":
		return Melbourne(), nil
	case "tokyo":
		return Tokyo(), nil
	case "heavyhex27":
		return HeavyHex27(), nil
	case "heavyhex127":
		return HeavyHex127(), nil
	}
	var m, r, c int
	if n, _ := fmt.Sscanf(name, "linear%d", &m); n == 1 && m > 0 {
		return Linear(m), nil
	}
	if n, _ := fmt.Sscanf(name, "ring%d", &m); n == 1 && m >= 3 {
		return Ring(m), nil
	}
	if n, _ := fmt.Sscanf(name, "grid%dx%d", &r, &c); n == 2 && r > 0 && c > 0 {
		return Grid(r, c), nil
	}
	return nil, fmt.Errorf("arch: unknown architecture %q (valid: %s)", name, strings.Join(Names(), ", "))
}

// Melbourne returns the IBM Q 14 Melbourne architecture: a 2×7 ladder with
// the published CNOT directions.
func Melbourne() *Arch {
	return MustNew("melbourne", 14, []Pair{
		{1, 0}, {1, 2}, {2, 3}, {4, 3}, {4, 10}, {5, 4},
		{5, 6}, {5, 9}, {6, 8}, {7, 8}, {9, 8}, {9, 10},
		{11, 3}, {11, 10}, {11, 12}, {12, 2}, {13, 1}, {13, 12},
	})
}

// Tokyo returns the IBM Q 20 Tokyo architecture. Its couplings are
// bidirectional (CX executable in both directions), so direction switches
// are never needed — a useful contrast to the QX devices in experiments.
func Tokyo() *Arch {
	undirected := [][2]int{
		{0, 1}, {1, 2}, {2, 3}, {3, 4},
		{0, 5}, {1, 6}, {1, 7}, {2, 6}, {2, 7}, {3, 8}, {3, 9}, {4, 8}, {4, 9},
		{5, 6}, {6, 7}, {7, 8}, {8, 9},
		{5, 10}, {5, 11}, {6, 10}, {6, 11}, {7, 12}, {7, 13}, {8, 12}, {8, 13}, {9, 14},
		{10, 11}, {11, 12}, {12, 13}, {13, 14},
		{10, 15}, {11, 16}, {11, 17}, {12, 16}, {12, 17}, {13, 18}, {13, 19}, {14, 18}, {14, 19},
		{15, 16}, {16, 17}, {17, 18}, {18, 19},
	}
	var pairs []Pair
	for _, e := range undirected {
		pairs = append(pairs, Pair{e[0], e[1]}, Pair{e[1], e[0]})
	}
	return MustNew("tokyo", 20, pairs)
}
