package arch

import (
	"sort"
	"testing"
)

// isAutomorphism checks σ preserves the directed coupling map of a.
func isAutomorphism(a *Arch, sigma []int) bool {
	m := a.NumQubits()
	if len(sigma) != m {
		return false
	}
	seen := make([]bool, m)
	for _, w := range sigma {
		if w < 0 || w >= m || seen[w] {
			return false
		}
		seen[w] = true
	}
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			if i == j {
				continue
			}
			if a.Allows(i, j) != a.Allows(sigma[i], sigma[j]) {
				return false
			}
		}
	}
	return true
}

func TestAutomorphismsAreValidAndIncludeIdentity(t *testing.T) {
	for _, a := range []*Arch{QX4(), QX5(), Ring(6), Grid(2, 2), Linear(5), Tokyo()} {
		autos := a.Automorphisms(0)
		if len(autos) == 0 {
			t.Fatalf("%s: no automorphisms returned (identity expected)", a.Name())
		}
		hasIdentity := false
		for _, sigma := range autos {
			if !isAutomorphism(a, sigma) {
				t.Errorf("%s: %v is not an automorphism", a.Name(), sigma)
			}
			id := true
			for i, w := range sigma {
				if i != w {
					id = false
					break
				}
			}
			hasIdentity = hasIdentity || id
		}
		if !hasIdentity {
			t.Errorf("%s: identity missing from %d automorphisms", a.Name(), len(autos))
		}
	}
}

func TestRingAutomorphismsAreTheRotations(t *testing.T) {
	// The directed m-ring's symmetries are exactly the m rotations:
	// reflections reverse edge directions and are excluded.
	for _, m := range []int{3, 5, 6, 8} {
		autos := Ring(m).Automorphisms(0)
		if len(autos) != m {
			t.Fatalf("ring%d: got %d automorphisms, want %d rotations", m, len(autos), m)
		}
		for _, sigma := range autos {
			shift := sigma[0]
			for i, w := range sigma {
				if w != (i+shift)%m {
					t.Fatalf("ring%d: %v is not a rotation", m, sigma)
				}
			}
		}
	}
}

func TestGrid2x2Automorphisms(t *testing.T) {
	// Edges 0→1, 0→2, 1→3, 2→3: the only non-trivial symmetry is the
	// diagonal flip swapping qubits 1 and 2.
	autos := Grid(2, 2).Automorphisms(0)
	if len(autos) != 2 {
		t.Fatalf("grid2x2: got %d automorphisms, want 2", len(autos))
	}
}

func TestAsymmetricArchsHaveTrivialGroup(t *testing.T) {
	// QX4's degree profile pins every vertex; a directed path reverses
	// under reflection. Both must report only the identity.
	for _, a := range []*Arch{QX4(), Linear(5)} {
		autos := a.Automorphisms(0)
		if len(autos) != 1 {
			t.Fatalf("%s: got %d automorphisms, want identity only", a.Name(), len(autos))
		}
	}
}

func TestAutomorphismsRespectLimit(t *testing.T) {
	// An edgeless architecture's group is all of S_m; the limit must cap
	// enumeration without losing validity.
	a := MustNew("edgeless", 5, nil)
	autos := a.Automorphisms(10)
	if len(autos) != 10 {
		t.Fatalf("got %d automorphisms, want exactly the limit 10", len(autos))
	}
	for _, sigma := range autos {
		if !isAutomorphism(a, sigma) {
			t.Fatalf("%v is not an automorphism", sigma)
		}
	}
}

func TestSubsetOrbitsRingCollapsesToOne(t *testing.T) {
	a := Ring(6)
	subsets := a.ConnectedSubsets(3)
	if len(subsets) != 6 {
		t.Fatalf("ring6 has %d connected 3-subsets, want 6 arcs", len(subsets))
	}
	orbits := SubsetOrbits(subsets, a.Automorphisms(0))
	if len(orbits) != 1 {
		t.Fatalf("got %d orbits, want 1 (all arcs rotate onto each other): %v", len(orbits), orbits)
	}
	if len(orbits[0]) != 6 {
		t.Fatalf("orbit has %d members, want 6", len(orbits[0]))
	}
	rep := subsets[orbits[0][0]]
	if rep[0] != 0 || rep[1] != 1 || rep[2] != 2 {
		t.Fatalf("representative %v, want the lexicographically smallest arc [0 1 2]", rep)
	}
}

func TestSubsetOrbitsAsymmetricNegative(t *testing.T) {
	// With a trivial automorphism group every subset is its own orbit.
	a := QX4()
	subsets := a.ConnectedSubsets(3)
	orbits := SubsetOrbits(subsets, a.Automorphisms(0))
	if len(orbits) != len(subsets) {
		t.Fatalf("got %d orbits for %d subsets; trivial group must not merge any", len(orbits), len(subsets))
	}
	for _, orbit := range orbits {
		if len(orbit) != 1 {
			t.Fatalf("orbit %v has %d members, want singleton", orbit, len(orbit))
		}
	}
}

func TestSubsetOrbitsMembersAreIsomorphic(t *testing.T) {
	// Structural sanity: all members of an orbit induce coupling graphs
	// with identical (in-degree, out-degree) profiles.
	for _, a := range []*Arch{Ring(6), Grid(2, 2), QX5()} {
		autos := a.Automorphisms(0)
		for n := 2; n <= 3; n++ {
			subsets := a.ConnectedSubsets(n)
			for _, orbit := range SubsetOrbits(subsets, autos) {
				want := degreeProfile(a, subsets[orbit[0]])
				for _, mi := range orbit[1:] {
					if got := degreeProfile(a, subsets[mi]); got != want {
						t.Fatalf("%s n=%d: orbit members %v and %v have profiles %q vs %q",
							a.Name(), n, subsets[orbit[0]], subsets[mi], want, got)
					}
				}
			}
		}
	}
}

func degreeProfile(a *Arch, subset []int) string {
	sub, _ := a.Restrict(subset)
	m := sub.NumQubits()
	var profile []int
	for i := 0; i < m; i++ {
		in, out := 0, 0
		for j := 0; j < m; j++ {
			if sub.Allows(j, i) {
				in++
			}
			if sub.Allows(i, j) {
				out++
			}
		}
		profile = append(profile, in*100+out)
	}
	sort.Ints(profile)
	key := ""
	for _, p := range profile {
		key += string(rune('0'+p/100)) + string(rune('0'+p%100)) + ","
	}
	return key
}
