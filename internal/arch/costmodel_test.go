package arch

import (
	"bytes"
	"testing"

	"repro/internal/perm"
)

func TestNilCostModelIsThePaperModel(t *testing.T) {
	var cm *CostModel
	if cm.SwapUnit() != PaperSwapUnit || cm.HUnit() != PaperHUnit {
		t.Fatalf("nil model units = %d/%d, want %d/%d", cm.SwapUnit(), cm.HUnit(), PaperSwapUnit, PaperHUnit)
	}
	if cm.SwapWeight(0, 1) != PaperSwapUnit || cm.HWeight(1, 0) != PaperHUnit {
		t.Fatalf("nil model weights = %d/%d, want 7/4", cm.SwapWeight(0, 1), cm.HWeight(1, 0))
	}
	if !cm.Uniform() || !cm.IsPaper() {
		t.Fatal("nil model must be uniform and paper")
	}
	if QX4().Cost() != nil {
		t.Fatal("a fresh architecture must carry no cost model (nil = paper)")
	}
}

func TestCostModelOverridesAndUniformity(t *testing.T) {
	cm, err := NewCostModel("test", 7, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !cm.IsPaper() {
		t.Fatal("7/4 model without overrides must count as paper")
	}
	if err := cm.SetSwapWeight(2, 1, 21); err != nil {
		t.Fatal(err)
	}
	if err := cm.SetHWeight(0, 1, 12); err != nil {
		t.Fatal(err)
	}
	// SWAP weights are undirected: {2,1} and {1,2} are the same edge.
	if got := cm.SwapWeight(1, 2); got != 21 {
		t.Errorf("SwapWeight(1,2) = %d, want 21 (undirected override)", got)
	}
	if got := cm.SwapWeight(0, 1); got != 7 {
		t.Errorf("SwapWeight(0,1) = %d, want the unit 7", got)
	}
	// H weights are directed: only (0,1) is overridden.
	if got, rev := cm.HWeight(0, 1), cm.HWeight(1, 0); got != 12 || rev != 4 {
		t.Errorf("HWeight = %d/%d, want 12 forward, 4 reverse", got, rev)
	}
	if cm.UniformSwap() || cm.UniformH() || cm.IsPaper() {
		t.Fatal("overridden model must not report uniform/paper")
	}
	edges := []perm.Edge{{A: 0, B: 1}, {A: 1, B: 2}}
	if got := cm.MinSwapWeight(edges); got != 7 {
		t.Errorf("MinSwapWeight = %d, want 7", got)
	}
	pairs := []Pair{{Control: 0, Target: 1}, {Control: 1, Target: 0}}
	if got := cm.MinHWeight(pairs); got != 4 {
		t.Errorf("MinHWeight = %d, want 4", got)
	}
	if got := cm.MaxHWeight(pairs); got != 12 {
		t.Errorf("MaxHWeight = %d, want 12", got)
	}
}

func TestCostModelValidation(t *testing.T) {
	if _, err := NewCostModel("bad", 0, 4); err == nil {
		t.Error("swap unit 0 must be rejected")
	}
	if _, err := NewCostModel("bad", 7, -1); err == nil {
		t.Error("negative h unit must be rejected")
	}
	cm, _ := NewCostModel("ok", 7, 4)
	if err := cm.SetSwapWeight(0, 1, 0); err == nil {
		t.Error("swap weight 0 must be rejected (free swaps break the descent)")
	}
	if err := cm.SetSwapWeight(1, 1, 7); err == nil {
		t.Error("self-loop swap override must be rejected")
	}
	if err := cm.SetHWeight(0, 1, -3); err == nil {
		t.Error("negative h weight must be rejected")
	}
}

// TestCostModelNoOpOverrideStaysUniform: an override equal to the unit does
// not change semantics, so uniformity checks — and hence the uniform fast
// paths that must produce bit-identical CNF — still fire.
func TestCostModelNoOpOverrideStaysUniform(t *testing.T) {
	cm, _ := NewCostModel("noop", 7, 4)
	if err := cm.SetSwapWeight(0, 1, 7); err != nil {
		t.Fatal(err)
	}
	if err := cm.SetHWeight(0, 1, 4); err != nil {
		t.Fatal(err)
	}
	if !cm.UniformSwap() || !cm.UniformH() || !cm.IsPaper() {
		t.Fatal("unit-valued overrides must keep the model uniform/paper")
	}
}

func TestParseCostModel(t *testing.T) {
	for _, spec := range []string{"", "paper"} {
		cm, err := ParseCostModel(spec)
		if err != nil {
			t.Fatalf("ParseCostModel(%q): %v", spec, err)
		}
		if !cm.IsPaper() {
			t.Errorf("ParseCostModel(%q) is not the paper model", spec)
		}
	}
	cm, err := ParseCostModel("swap=10,h=3")
	if err != nil {
		t.Fatal(err)
	}
	if cm.SwapUnit() != 10 || cm.HUnit() != 3 {
		t.Errorf("units = %d/%d, want 10/3", cm.SwapUnit(), cm.HUnit())
	}
	if cm2, err := ParseCostModel("h=2"); err != nil || cm2.SwapUnit() != PaperSwapUnit || cm2.HUnit() != 2 {
		t.Errorf("partial spec h=2: cm=%v err=%v, want swap default 7", cm2, err)
	}
	for _, bad := range []string{"nonsense", "swap=", "swap=0,h=4", "swap=7;h=4"} {
		if _, err := ParseCostModel(bad); err == nil {
			t.Errorf("ParseCostModel(%q) accepted", bad)
		}
	}
}

func TestParseCalibration(t *testing.T) {
	cm, err := ParseCalibration([]byte(`{
		"name": "qx-noise",
		"default": {"swap": 7, "h": 4},
		"edges": [
			{"a": 0, "b": 1, "swap": 14, "h": 8},
			{"a": 2, "b": 1, "error": 0.02}
		]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if cm.Name() != "qx-noise" {
		t.Errorf("name = %q", cm.Name())
	}
	if got := cm.SwapWeight(0, 1); got != 14 {
		t.Errorf("explicit swap weight = %d, want 14", got)
	}
	// H overrides apply to both directed orientations.
	if f, r := cm.HWeight(0, 1), cm.HWeight(1, 0); f != 8 || r != 8 {
		t.Errorf("explicit h weights = %d/%d, want 8 both ways", f, r)
	}
	// error 0.02 → u = round(1000·(−ln 0.98)) = round(20.203) = 20.
	if got := cm.SwapWeight(1, 2); got != 7*20 {
		t.Errorf("error-derived swap weight = %d, want %d", got, 7*20)
	}
	if got := cm.HWeight(2, 1); got != 4*20 {
		t.Errorf("error-derived h weight = %d, want %d", got, 4*20)
	}

	for _, bad := range []string{
		`{"edges": [{"a": 0, "b": 1}]}`,               // neither weights nor error
		`{"edges": [{"a": 0, "b": 1, "error": 1.0}]}`, // rate out of [0,1)
		`not json`,
	} {
		if _, err := ParseCalibration([]byte(bad)); err == nil {
			t.Errorf("ParseCalibration(%q) accepted", bad)
		}
	}
}

// TestCostModelFingerprintCanonical: semantically equal models fingerprint
// identically (name and override insertion order are cosmetic), distinct
// weights never collide with the paper model or each other.
func TestCostModelFingerprintCanonical(t *testing.T) {
	paper := PaperCostModel()
	var nilModel *CostModel
	if !bytes.Equal(paper.AppendFingerprint(nil), nilModel.AppendFingerprint(nil)) {
		t.Fatal("nil and explicit paper model must fingerprint identically")
	}

	a, _ := NewCostModel("first", 7, 4)
	a.SetSwapWeight(0, 1, 10)
	a.SetSwapWeight(2, 3, 11)
	b, _ := NewCostModel("second-name", 7, 4)
	b.SetSwapWeight(3, 2, 11) // reversed endpoints, reversed insertion order
	b.SetSwapWeight(1, 0, 10)
	if !bytes.Equal(a.AppendFingerprint(nil), b.AppendFingerprint(nil)) {
		t.Fatal("equal-weight models must fingerprint identically")
	}

	c := a.Clone()
	c.SetSwapWeight(0, 1, 12)
	if bytes.Equal(a.AppendFingerprint(nil), c.AppendFingerprint(nil)) {
		t.Fatal("different weights must fingerprint differently")
	}
	if bytes.Equal(a.AppendFingerprint(nil), paper.AppendFingerprint(nil)) {
		t.Fatal("overridden model must not fingerprint as paper")
	}

	// A no-op override (equal to the unit) is semantically absent.
	d, _ := NewCostModel("noop", 7, 4)
	d.SetSwapWeight(0, 1, 7)
	if !bytes.Equal(d.AppendFingerprint(nil), paper.AppendFingerprint(nil)) {
		t.Fatal("unit-valued override must fingerprint as the plain model")
	}
}

func TestWithCostModelAndRestrict(t *testing.T) {
	cm, _ := NewCostModel("g", 7, 4)
	cm.SetSwapWeight(0, 1, 70)
	cm.SetHWeight(1, 2, 40)
	a, err := Grid(2, 2).WithCostModel(cm)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cost().SwapWeight(0, 1) != 70 {
		t.Fatal("model not attached")
	}
	// Mutating the caller's model must not leak into the arch (cloned).
	cm.SetSwapWeight(0, 1, 99)
	if got := a.Cost().SwapWeight(0, 1); got != 70 {
		t.Fatalf("attached model aliases the caller's: weight %d", got)
	}
	// Out-of-range override indices are rejected.
	badModel, _ := NewCostModel("bad", 7, 4)
	badModel.SetSwapWeight(0, 9, 10)
	if _, err := Grid(2, 2).WithCostModel(badModel); err == nil {
		t.Fatal("override beyond the qubit count must be rejected")
	}

	// Restrict reindexes surviving overrides and drops the rest.
	sub, back := a.Restrict([]int{1, 2})
	scm := sub.Cost()
	if scm == nil {
		t.Fatal("restricted arch lost its cost model")
	}
	// Original pair (1,2) → subset indices (back⁻¹): find them.
	inv := map[int]int{}
	for i, o := range back {
		inv[o] = i
	}
	if got := scm.HWeight(inv[1], inv[2]); got != 40 {
		t.Errorf("restricted HWeight = %d, want 40", got)
	}
	if got := scm.SwapWeight(inv[1], inv[2]); got != 7 {
		t.Errorf("restricted SwapWeight = %d, want the unit (edge {0,1} dropped)", got)
	}
}
