package arch

import (
	"testing"
	"testing/quick"
)

func TestConnectedSubsetsQX4Example9(t *testing.T) {
	a := QX4()
	// Paper Example 9: of the C(5,4) = 5 subsets of size 4, only the 4
	// containing p3 (0-based qubit 2) are connected.
	subs := a.ConnectedSubsets(4)
	if len(subs) != 4 {
		t.Fatalf("got %d connected 4-subsets, want 4: %v", len(subs), subs)
	}
	for _, s := range subs {
		has2 := false
		for _, q := range s {
			if q == 2 {
				has2 = true
			}
		}
		if !has2 {
			t.Errorf("connected subset %v missing hub qubit 2", s)
		}
	}
}

func TestConnectedSubsetsSizes(t *testing.T) {
	a := QX4()
	if got := len(a.ConnectedSubsets(5)); got != 1 {
		t.Errorf("full subset count = %d, want 1", got)
	}
	if got := len(a.ConnectedSubsets(1)); got != 5 {
		t.Errorf("singleton count = %d, want 5", got)
	}
	if a.ConnectedSubsets(0) != nil || a.ConnectedSubsets(6) != nil {
		t.Error("degenerate sizes should return nil")
	}
	// Size-2 connected subsets = undirected edges.
	if got := len(a.ConnectedSubsets(2)); got != len(a.UndirectedEdges()) {
		t.Errorf("2-subsets = %d, want %d", got, len(a.UndirectedEdges()))
	}
}

func TestConnectedSubsetsDisconnectedArch(t *testing.T) {
	a := MustNew("disc", 4, []Pair{{0, 1}, {2, 3}})
	subs := a.ConnectedSubsets(2)
	if len(subs) != 2 {
		t.Errorf("got %v, want exactly the two edges", subs)
	}
	if len(a.ConnectedSubsets(3)) != 0 {
		t.Error("no connected 3-subset should exist")
	}
}

func TestTrianglesQX4(t *testing.T) {
	tri := QX4().Triangles()
	if len(tri) != 2 {
		t.Fatalf("QX4 triangles = %v, want 2", tri)
	}
	want := [][3]int{{0, 1, 2}, {2, 3, 4}}
	for i, tr := range tri {
		if tr != want[i] {
			t.Errorf("triangle %d = %v, want %v", i, tr, want[i])
		}
	}
}

func TestTrianglesLinear(t *testing.T) {
	if tri := Linear(5).Triangles(); len(tri) != 0 {
		t.Errorf("linear arch has triangles: %v", tri)
	}
}

func TestRestrict(t *testing.T) {
	a := QX4()
	sub, back := a.Restrict([]int{2, 3, 4})
	if sub.NumQubits() != 3 {
		t.Fatalf("restricted m = %d", sub.NumQubits())
	}
	// back maps new→old and must be sorted.
	if back[0] != 2 || back[1] != 3 || back[2] != 4 {
		t.Errorf("back = %v", back)
	}
	// Original pairs among {2,3,4}: (3,2),(3,4),(4,2) → new (1,0),(1,2),(2,0).
	wantPairs := []Pair{{1, 0}, {1, 2}, {2, 0}}
	if len(sub.Pairs()) != len(wantPairs) {
		t.Fatalf("pairs = %v", sub.Pairs())
	}
	for _, p := range wantPairs {
		if !sub.Allows(p.Control, p.Target) {
			t.Errorf("restricted arch should allow %+v", p)
		}
	}
	// Unsorted input must still produce sorted renumbering.
	_, back2 := a.Restrict([]int{4, 2, 3})
	for i := range back {
		if back2[i] != back[i] {
			t.Errorf("unsorted Restrict back = %v", back2)
		}
	}
}

// Property: every reported subset is connected and sorted; subsets are
// unique.
func TestConnectedSubsetsProperty(t *testing.T) {
	archs := []*Arch{QX4(), QX2(), Linear(6), Ring(6), Grid(2, 3)}
	f := func(ai, n uint) bool {
		a := archs[int(ai%uint(len(archs)))]
		size := 1 + int(n%uint(a.NumQubits()))
		seen := map[string]bool{}
		for _, s := range a.ConnectedSubsets(size) {
			key := ""
			for i, q := range s {
				if i > 0 && s[i-1] >= q {
					return false // not strictly sorted
				}
				key += string(rune('a' + q))
			}
			if seen[key] {
				return false
			}
			seen[key] = true
			if !a.subsetConnected(s) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
