package arch

import "testing"

// shapeCheck asserts the structural invariants every heavy-hex family
// shares: bidirectional couplings, a connected graph, max degree 3.
func shapeCheck(t *testing.T, a *Arch, qubits, undirected int) {
	t.Helper()
	if got := a.NumQubits(); got != qubits {
		t.Errorf("%s: %d qubits, want %d", a.Name(), got, qubits)
	}
	if got := len(a.UndirectedEdges()); got != undirected {
		t.Errorf("%s: %d undirected edges, want %d", a.Name(), got, undirected)
	}
	if got := len(a.Pairs()); got != 2*undirected {
		t.Errorf("%s: %d directed pairs, want %d (all bidirectional)", a.Name(), got, 2*undirected)
	}
	for _, e := range a.UndirectedEdges() {
		if !a.Allows(e.A, e.B) || !a.Allows(e.B, e.A) {
			t.Fatalf("%s: edge {%d,%d} not bidirectional", a.Name(), e.A, e.B)
		}
	}
	if !a.Connected() {
		t.Errorf("%s: not connected", a.Name())
	}
	for q := 0; q < a.NumQubits(); q++ {
		if d := a.Degree(q); d > 3 {
			t.Errorf("%s: qubit %d has degree %d, heavy-hex caps at 3", a.Name(), q, d)
		}
	}
}

func TestHeavyHexShapes(t *testing.T) {
	// Falcon: 27 qubits, 28 couplings. Eagle-class: 127 qubits, 144.
	shapeCheck(t, HeavyHex27(), 27, 28)
	shapeCheck(t, HeavyHex127(), 127, 144)
	if HeavyHex127().NumQubits() != HeavyHex(7, 15).NumQubits() {
		t.Error("HeavyHex127 must be the (7,15) instance of the generator")
	}
	// A few more generator instances stay structurally sound.
	for _, dims := range [][2]int{{2, 3}, {3, 5}, {4, 9}} {
		a := HeavyHex(dims[0], dims[1])
		shapeCheck(t, a, a.NumQubits(), len(a.UndirectedEdges()))
	}
}

func TestHeavyHexGeneratorPanics(t *testing.T) {
	for _, dims := range [][2]int{{1, 5}, {2, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("HeavyHex(%d,%d) did not panic", dims[0], dims[1])
				}
			}()
			HeavyHex(dims[0], dims[1])
		}()
	}
}

// TestGeneratedFamilyAutomorphisms pins the symmetry-group sizes the §4.1
// orbit pruning sees on the generated families: heavy-hex 27 and the 3×3
// grid each have exactly one non-trivial symmetry.
func TestGeneratedFamilyAutomorphisms(t *testing.T) {
	for _, tc := range []struct {
		a    *Arch
		want int
	}{
		{HeavyHex27(), 2},
		{Grid(3, 3), 2},
	} {
		autos := tc.a.Automorphisms(DefaultAutomorphismLimit)
		if len(autos) != tc.want {
			t.Errorf("%s: %d automorphisms, want %d", tc.a.Name(), len(autos), tc.want)
		}
		for _, sigma := range autos {
			if !isAutomorphism(tc.a, sigma) {
				t.Errorf("%s: %v is not an automorphism", tc.a.Name(), sigma)
			}
		}
	}
}

// TestWeightedCostModelBreaksSymmetry: automorphisms must preserve edge
// weights, so a calibration that singles out one edge kills the 180°
// rotation and only the identity survives.
func TestWeightedCostModelBreaksSymmetry(t *testing.T) {
	base := Grid(3, 3)
	if got := len(base.Automorphisms(DefaultAutomorphismLimit)); got != 2 {
		t.Fatalf("unweighted grid3x3: %d automorphisms, want 2", got)
	}
	cm, err := NewCostModel("asym", PaperSwapUnit, PaperHUnit)
	if err != nil {
		t.Fatal(err)
	}
	if err := cm.SetSwapWeight(0, 1, 70); err != nil {
		t.Fatal(err)
	}
	weighted, err := base.WithCostModel(cm)
	if err != nil {
		t.Fatal(err)
	}
	autos := weighted.Automorphisms(DefaultAutomorphismLimit)
	if len(autos) != 1 {
		t.Fatalf("weighted grid3x3: %d automorphisms, want identity only", len(autos))
	}
	for i, v := range autos[0] {
		if v != i {
			t.Fatalf("surviving automorphism %v is not the identity", autos[0])
		}
	}

	// A symmetric calibration — the image edge gets the same weight —
	// keeps both automorphisms. grid3x3's non-trivial symmetry is the
	// transpose (3r+c ↔ 3c+r), so edge {0,1} pairs with {0,3}.
	sym := cm.Clone()
	if err := sym.SetSwapWeight(0, 3, 70); err != nil {
		t.Fatal(err)
	}
	if got := len(base.MustWithCostModel(sym).Automorphisms(DefaultAutomorphismLimit)); got != 2 {
		t.Errorf("symmetric weighting: %d automorphisms, want 2", got)
	}
}

// TestHeavyHexSubsetOrbits: orbit canonicalization on a generated family —
// with a 2-element group every orbit has size 1 or 2, the representatives
// cover all subsets, and total size is preserved.
func TestHeavyHexSubsetOrbits(t *testing.T) {
	a := HeavyHex(2, 3) // smallest heavy-hex: keeps the subset count tame
	autos := a.Automorphisms(DefaultAutomorphismLimit)
	subsets := a.ConnectedSubsets(3)
	if len(subsets) == 0 {
		t.Fatal("no connected 3-subsets")
	}
	orbits := SubsetOrbits(subsets, autos)
	total := 0
	for _, orb := range orbits {
		if len(orb) < 1 || len(orb) > len(autos) {
			t.Fatalf("orbit size %d outside [1,%d]", len(orb), len(autos))
		}
		total += len(orb)
	}
	if total != len(subsets) {
		t.Errorf("orbits cover %d subsets, want %d", total, len(subsets))
	}
	if len(autos) > 1 && len(orbits) >= len(subsets) {
		t.Errorf("non-trivial group gave no orbit collapse: %d orbits of %d subsets",
			len(orbits), len(subsets))
	}
}
