package qxmap

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// goldenResult builds a fully-populated Result with fixed values so its
// wire encoding is byte-for-byte reproducible.
func goldenResult() *Result {
	mapped := NewCircuit(2)
	mapped.AddH(1)
	mapped.AddCNOT(1, 0)
	mapped.SetName("golden")
	return &Result{
		Mapped:             mapped,
		Cost:               11,
		Swaps:              1,
		Switches:           1,
		InitialLayout:      Mapping{1, 0},
		FinalLayout:        Mapping{0, 1},
		PermPoints:         2,
		Minimal:            true,
		GatesOptimizedAway: 3,
		CacheHit:           true,
		Stats: Stats{
			SkeletonTime:          10 * time.Microsecond,
			SolveTime:             2 * time.Millisecond,
			MaterializeTime:       20 * time.Microsecond,
			VerifyTime:            300 * time.Microsecond,
			OptimizeTime:          40 * time.Microsecond,
			Solver:                "exact",
			Engine:                "sat",
			CacheHit:              true,
			SATSolves:             4,
			SATEncodes:            1,
			SATConflicts:          123,
			BoundProbes:           3,
			BoundJumps:            1,
			LowerBound:            7,
			SubsetsPruned:         2,
			CoreFamilyRefutations: 1,
			OrbitHits:             5,
		},
		Method:  MethodExact,
		Engine:  EngineSAT,
		Runtime: 3 * time.Millisecond,
	}
}

// checkGolden compares got against the named golden file (testdata/),
// rewriting it under -update.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (run `go test -run Golden -update .` to create): %v", err)
	}
	if string(got) != string(want) {
		t.Errorf("wire encoding drifted from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// TestResultJSONGolden pins the stable wire encoding of Result and Stats:
// any field addition, rename or type change must be deliberate (reflected
// by updating the golden file), because cmd/qxmap -json and the qxmapd
// service both emit exactly this shape.
func TestResultJSONGolden(t *testing.T) {
	j, err := goldenResult().JSON(true)
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.MarshalIndent(j, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "result.golden.json", append(got, '\n'))
}

// TestBatchReportJSONGolden pins the batch report encoding, including the
// fail-soft error shape and the aggregate counters.
func TestBatchReportJSONGolden(t *testing.T) {
	res := goldenResult()
	report, err := BatchReport([]BatchResult{
		{Index: 0, Job: Job{Name: "ok"}, Result: res},
		{Index: 1, Job: Job{Name: "boom"}, Err: os.ErrDeadlineExceeded},
	}, false)
	if err != nil {
		t.Fatal(err)
	}
	if report.Succeeded != 1 || report.Failed != 1 || report.TotalCost != res.Cost {
		t.Fatalf("aggregates = %+v", report)
	}
	got, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "batch.golden.json", append(got, '\n'))
}

// TestResultJSONWithoutQASM: the qasm field is omitted when not requested.
func TestResultJSONWithoutQASM(t *testing.T) {
	j, err := goldenResult().JSON(false)
	if err != nil {
		t.Fatal(err)
	}
	if j.QASM != "" {
		t.Errorf("qasm populated without includeQASM: %q", j.QASM)
	}
	b, err := json.Marshal(j)
	if err != nil {
		t.Fatal(err)
	}
	var round map[string]any
	if err := json.Unmarshal(b, &round); err != nil {
		t.Fatal(err)
	}
	if _, present := round["qasm"]; present {
		t.Error("qasm key present in encoded JSON despite omitempty")
	}
	if round["cost"] != float64(11) {
		t.Errorf("cost = %v", round["cost"])
	}
}

// TestResultJSONFromRealMap: the encoding of a real pipeline result is
// internally consistent (cost breakdown, solver echo, layouts sized to the
// architecture).
func TestResultJSONFromRealMap(t *testing.T) {
	res, err := Map(Figure1a(), QX4(), Options{Engine: EngineDP})
	if err != nil {
		t.Fatal(err)
	}
	j, err := res.JSON(true)
	if err != nil {
		t.Fatal(err)
	}
	if j.Cost != 7*j.Swaps+4*j.Switches {
		t.Errorf("cost %d != 7·%d + 4·%d", j.Cost, j.Swaps, j.Switches)
	}
	if j.Gates == 0 || j.Depth == 0 {
		t.Errorf("gates/depth = %d/%d", j.Gates, j.Depth)
	}
	if j.QASM == "" {
		t.Error("missing qasm")
	}
	if j.Stats.Solver != "exact" || j.Stats.Engine != "dp" {
		t.Errorf("stats provenance = %s/%s", j.Stats.Solver, j.Stats.Engine)
	}
}
