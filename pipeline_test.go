package qxmap

import (
	"testing"
	"testing/quick"
)

// randomElementary builds a deterministic pseudo-random elementary circuit.
func randomElementary(seed int64, n, gates int) *Circuit {
	state := uint64(seed)*2862933555777941757 + 3037000493
	next := func(mod int) int {
		state = state*2862933555777941757 + 3037000493
		return int((state >> 33) % uint64(mod))
	}
	c := NewCircuit(n)
	for i := 0; i < gates; i++ {
		switch next(6) {
		case 0:
			c.AddH(next(n))
		case 1:
			c.AddT(next(n))
		case 2:
			c.AddTdg(next(n))
		case 3:
			c.AddX(next(n))
		default:
			a := next(n)
			c.AddCNOT(a, (a+1+next(n-1))%n)
		}
	}
	return c
}

// TestPipelineProperty is the top-level end-to-end property: for random
// circuits, every method produces a verified-equivalent, coupling-
// compliant circuit (Map's built-in verification would error otherwise),
// exact methods agree across engines, and no method beats the minimum.
func TestPipelineProperty(t *testing.T) {
	a := QX4()
	f := func(seed int64, nRaw, gRaw uint) bool {
		n := 2 + int(nRaw%4)
		gates := 1 + int(gRaw%12)
		c := randomElementary(seed, n, gates)

		min, err := Map(c, a, Options{Engine: EngineDP})
		if err != nil {
			return false
		}
		sat, err := Map(c, a, Options{Engine: EngineSAT})
		if err != nil || sat.Cost != min.Cost {
			return false
		}
		for _, m := range []Method{MethodExactSubsets, MethodDisjoint, MethodOdd,
			MethodTriangle, MethodHeuristic, MethodAStar} {
			res, err := Map(c, a, Options{Method: m, Engine: EngineDP, Seed: seed, Lookahead: 0.5})
			if err != nil {
				// §4.2 restrictions can make an instance unsatisfiable;
				// that is a legitimate outcome, not a failure.
				continue
			}
			if res.Cost < min.Cost {
				return false
			}
		}
		// Optimized mapping stays verified (Map re-verifies internally).
		opt, err := Map(c, a, Options{Engine: EngineDP, Optimize: true})
		if err != nil {
			return false
		}
		return opt.TotalGates() <= min.TotalGates()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestPipelineOnAllArchitectures maps a fixed workload to every catalog
// architecture, relying on Map's internal verification.
func TestPipelineOnAllArchitectures(t *testing.T) {
	c := randomElementary(7, 4, 10)
	for _, name := range []string{"ibmqx2", "ibmqx4", "ibmqx5", "melbourne", "tokyo", "linear6", "ring5", "grid2x3"} {
		a, err := ArchByName(name)
		if err != nil {
			t.Fatal(err)
		}
		method := MethodExact
		if a.NumQubits() > 5 {
			method = MethodExactSubsets
		}
		res, err := Map(c, a, Options{Method: method, Engine: EngineDP})
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if res.Mapped.NumQubits() != a.NumQubits() {
			t.Errorf("%s: mapped over %d qubits", name, res.Mapped.NumQubits())
		}
	}
}

// TestExactEnginesAgreeWithOptimizeAndLayouts stresses option combinations.
func TestExactEnginesAgreeWithOptimizeAndLayouts(t *testing.T) {
	c := randomElementary(11, 3, 8)
	pin := []int{2, 0, 1}
	dp, err := Map(c, QX4(), Options{Engine: EngineDP, InitialLayout: pin, Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	st, err := Map(c, QX4(), Options{Engine: EngineSAT, InitialLayout: pin, Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	if dp.Cost != st.Cost {
		t.Fatalf("pinned+optimized: dp %d vs sat %d", dp.Cost, st.Cost)
	}
	if got := dp.InitialLayout; got[0] != 2 || got[1] != 0 || got[2] != 1 {
		t.Errorf("layout %v not pinned", got)
	}
}
