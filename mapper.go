package qxmap

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/portfolio"
	"repro/internal/store"
)

// ErrMapperClosed is returned by Mapper methods after Close: by Submit for
// new jobs, and as the failure of jobs that were still queued when the
// mapper shut down.
var ErrMapperClosed = errors.New("qxmap: mapper closed")

// ErrQueueFull is returned by TrySubmit when the scheduler queue has no
// free slot — the backpressure signal a service frontend turns into a
// retryable 503 instead of a blocked handler.
var ErrQueueFull = errors.New("qxmap: scheduler queue full")

// Mapper is an instance-scoped mapping client: it owns its configuration
// defaults, its portfolio result cache and a bounded asynchronous job
// scheduler. Two Mapper instances share no mutable state — caches, worker
// pools and statistics are fully isolated, so independent tenants (or
// tests) can tune concurrency and cache capacity without interfering.
//
// Construct one with NewMapper and functional options:
//
//	m, err := qxmap.NewMapper(
//		qxmap.WithMethod(qxmap.MethodExact),
//		qxmap.WithPortfolio(true),
//		qxmap.WithCacheSize(1024),
//		qxmap.WithWorkers(8),
//		qxmap.WithDefaultTimeout(30*time.Second),
//	)
//
// Synchronous mapping goes through Map (instance defaults) or MapWith
// (explicit per-call Options); batches through MapBatch; asynchronous jobs
// through Submit, which returns a JobHandle with Wait/Done/Cancel/Stats.
// All methods are safe for concurrent use.
//
// The package-level Map, MapContext and MapBatch functions delegate to a
// lazily-initialized process-wide default instance (see Default), which
// preserves the historical shared-cache behavior.
type Mapper struct {
	opts    Options
	cache   *portfolio.Cache
	store   *store.Store // persistent result tier; nil without WithStore
	workers int
	timeout time.Duration

	// Cumulative work accounting across every pipeline trip (sync and
	// async), read back by Totals and the qxmapd /metrics endpoint.
	totMaps      atomic.Uint64
	totErrors    atomic.Uint64
	totMemHits   atomic.Uint64
	totDiskHits  atomic.Uint64
	totSolves    atomic.Uint64
	totEncodes   atomic.Uint64
	totConflicts atomic.Uint64
	totProbes    atomic.Uint64
	totDegAny    atomic.Uint64
	totDegHeur   atomic.Uint64
	inflight     atomic.Int64

	// Async scheduler: Submit enqueues JobHandles onto a bounded queue
	// drained by a lazily-started worker pool.
	lifeCtx    context.Context
	lifeCancel context.CancelFunc
	queue      chan *JobHandle
	startOnce  sync.Once
	wg         sync.WaitGroup
	nextID     atomic.Uint64
	closed     atomic.Bool
	submitMu   sync.RWMutex // held (read) across enqueue; Close excludes it
}

// mapperConfig accumulates functional options before the Mapper is built.
type mapperConfig struct {
	opts       Options
	cacheSize  int
	workers    int
	queueDepth int
	timeout    time.Duration
	storeDir   string
	storeSync  bool
}

// DefaultQueueDepth is the async scheduler's queue capacity when
// WithQueueDepth is not given. A Submit against a full queue blocks
// (backpressure) until a worker frees a slot or the context expires.
const DefaultQueueDepth = 64

// Option configures a Mapper under construction.
type Option func(*mapperConfig) error

// WithMethod sets the default mapping algorithm for Map and for jobs that
// adopt the instance defaults.
func WithMethod(m Method) Option {
	return func(c *mapperConfig) error {
		if m < 0 || int(m) >= len(methodNames) {
			return fmt.Errorf("qxmap: WithMethod: unknown method %d", int(m))
		}
		c.opts.Method = m
		return nil
	}
}

// WithEngine sets the default exact backend (EngineSAT or EngineDP).
func WithEngine(e Engine) Option {
	return func(c *mapperConfig) error {
		if _, err := ParseEngine(e.String()); err != nil {
			return fmt.Errorf("qxmap: WithEngine: %w", err)
		}
		c.opts.Engine = e
		return nil
	}
}

// WithPortfolio routes exact methods through the portfolio layer by
// default: heuristic bound seeding, SAT/DP racing and memoization in the
// instance's own cache (see WithCacheSize).
func WithPortfolio(on bool) Option {
	return func(c *mapperConfig) error {
		c.opts.Portfolio = on
		return nil
	}
}

// WithCacheSize bounds the instance's portfolio cache to the given number
// of entries (0 selects portfolio.DefaultCacheSize). The cache belongs to
// this instance alone: no other Mapper can read or evict its entries.
func WithCacheSize(entries int) Option {
	return func(c *mapperConfig) error {
		if entries < 0 {
			return fmt.Errorf("qxmap: WithCacheSize: negative capacity %d", entries)
		}
		c.cacheSize = entries
		return nil
	}
}

// WithStore attaches a persistent result store rooted at dir (created if
// absent) as the tier below the in-memory cache: exact-family results are
// written through to disk and identical instances — same circuit skeleton,
// architecture and solve options, under the same schema version — are
// served from the store across process restarts, promoted back into the
// LRU on first hit. The Mapper owns the store: it is opened by NewMapper
// (a corrupt or unwritable directory fails construction) and closed by
// Close. Results solved under a conflict budget are never persisted.
func WithStore(dir string) Option {
	return func(c *mapperConfig) error {
		if dir == "" {
			return fmt.Errorf("qxmap: WithStore: empty directory")
		}
		c.storeDir = dir
		return nil
	}
}

// WithStoreSync makes every persistent-store write fsync before returning
// (durability over throughput). Off by default: the OS flushes in the
// background and crash-recovery truncates any torn tail, so an unsynced
// crash costs at most the most recent records, never store integrity.
func WithStoreSync(on bool) Option {
	return func(c *mapperConfig) error {
		c.storeSync = on
		return nil
	}
}

// WithWorkers bounds the mapper's concurrency: the async scheduler runs at
// most n jobs at once, and MapBatch defaults its pool to n when
// BatchOptions.Workers is unset. 0 (the default) means one worker per
// available core.
func WithWorkers(n int) Option {
	return func(c *mapperConfig) error {
		if n < 0 {
			return fmt.Errorf("qxmap: WithWorkers: negative count %d", n)
		}
		c.workers = n
		return nil
	}
}

// WithQueueDepth sets the async scheduler's queue capacity (default
// DefaultQueueDepth). Submit blocks when the queue is full.
func WithQueueDepth(n int) Option {
	return func(c *mapperConfig) error {
		if n < 1 {
			return fmt.Errorf("qxmap: WithQueueDepth: capacity %d < 1", n)
		}
		c.queueDepth = n
		return nil
	}
}

// WithDefaultTimeout bounds every Map/MapWith call and every async job
// that does not already carry a deadline: the mapper applies
// context.WithTimeout(ctx, d) when ctx has none. 0 (the default) disables
// the bound. For async jobs the clock starts when the job begins running,
// not while it waits in the queue.
func WithDefaultTimeout(d time.Duration) Option {
	return func(c *mapperConfig) error {
		if d < 0 {
			return fmt.Errorf("qxmap: WithDefaultTimeout: negative duration %v", d)
		}
		c.timeout = d
		return nil
	}
}

// WithVerify sets the default verification policy: on (the default) runs
// the structural, GF(2) and small-instance unitary checks on every mapped
// circuit; off skips them (Options.SkipVerify).
func WithVerify(on bool) Option {
	return func(c *mapperConfig) error {
		c.opts.SkipVerify = !on
		return nil
	}
}

// WithOptimize enables the post-mapping peephole optimizer by default.
func WithOptimize(on bool) Option {
	return func(c *mapperConfig) error {
		c.opts.Optimize = on
		return nil
	}
}

// WithLowerBound sets the default for the SAT engine's admissible
// lower-bound seeding: on (the default) derives a coupling-graph distance
// bound that seeds the descent's lower end; off disables it
// (Options.SATNoLowerBound) — costs are unchanged, only more bound probes
// are spent.
func WithLowerBound(on bool) Option {
	return func(c *mapperConfig) error {
		c.opts.SATNoLowerBound = !on
		return nil
	}
}

// WithSATThreads sets the default clause-sharing portfolio width for the
// SAT engine (Options.SATThreads): n > 1 solves every instance with n
// diversified goroutine workers sharing low-LBD learnt clauses; n ≤ 1 (the
// default) keeps the fully deterministic single solver.
func WithSATThreads(n int) Option {
	return func(c *mapperConfig) error {
		c.opts.SATThreads = n
		return nil
	}
}

// WithLadder enables the degradation ladder by default for every Map call
// and job that adopts the instance defaults (Options.Ladder): exhausted
// exact solves return the best valid plan found — anytime incumbent or
// heuristic fallback — instead of an error, reported through
// Stats.Degradation. A no-op under generous deadlines.
func WithLadder(on bool) Option {
	return func(c *mapperConfig) error {
		c.opts.Ladder = on
		return nil
	}
}

// WithCostModel sets the default cost model for every Map call and job
// that adopts the instance defaults: nil (the default) keeps the paper's
// uniform 7/4 objective, a model from NewCostModel/ParseCostModel/
// LoadCalibration makes every method optimize the weighted objective
// (Options.CostModel).
func WithCostModel(cm *CostModel) Option {
	return func(c *mapperConfig) error {
		c.opts.CostModel = cm
		return nil
	}
}

// WithHeuristicRuns sets the default number of stochastic-heuristic seeds.
func WithHeuristicRuns(n int) Option {
	return func(c *mapperConfig) error {
		if n < 0 {
			return fmt.Errorf("qxmap: WithHeuristicRuns: negative count %d", n)
		}
		c.opts.HeuristicRuns = n
		return nil
	}
}

// WithSeed sets the default random seed for the heuristic methods.
func WithSeed(seed int64) Option {
	return func(c *mapperConfig) error {
		c.opts.Seed = seed
		return nil
	}
}

// WithLookahead sets the default A*/SABRE lookahead weight.
func WithLookahead(w float64) Option {
	return func(c *mapperConfig) error {
		c.opts.Lookahead = w
		return nil
	}
}

// WithOptions replaces the instance's default Options wholesale. Later
// field-level options (WithMethod, WithEngine, …) still apply on top.
func WithOptions(opts Options) Option {
	return func(c *mapperConfig) error {
		c.opts = opts
		return nil
	}
}

// NewMapper builds a Mapper from functional options. The zero
// configuration — NewMapper() — matches the package-level defaults: exact
// method, SAT engine, verification on, one worker per core, a
// portfolio.DefaultCacheSize-entry cache and no default timeout.
func NewMapper(options ...Option) (*Mapper, error) {
	cfg := mapperConfig{queueDepth: DefaultQueueDepth}
	for _, o := range options {
		if err := o(&cfg); err != nil {
			return nil, err
		}
	}
	workers := cfg.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var st *store.Store
	if cfg.storeDir != "" {
		var err error
		st, err = store.Open(cfg.storeDir, store.Options{SyncWrites: cfg.storeSync})
		if err != nil {
			return nil, fmt.Errorf("qxmap: opening result store: %w", err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Mapper{
		opts:       cfg.opts,
		cache:      portfolio.NewCache(cfg.cacheSize),
		store:      st,
		workers:    workers,
		timeout:    cfg.timeout,
		lifeCtx:    ctx,
		lifeCancel: cancel,
		queue:      make(chan *JobHandle, cfg.queueDepth),
	}, nil
}

// Options returns a copy of the instance's default Options.
func (m *Mapper) Options() Options { return m.opts }

// Workers returns the mapper's concurrency bound.
func (m *Mapper) Workers() int { return m.workers }

// Map maps the circuit onto the architecture with the instance's default
// Options, under the instance's default timeout (when set and ctx carries
// no deadline). The input must be elementary (single-qubit gates and CNOTs
// only).
func (m *Mapper) Map(ctx context.Context, c *Circuit, a *Architecture) (*Result, error) {
	return m.MapWith(ctx, c, a, m.opts)
}

// MapWith maps the circuit with explicit per-call Options, overriding the
// instance defaults entirely; only the portfolio cache (and the default
// timeout) still come from the instance.
func (m *Mapper) MapWith(ctx context.Context, c *Circuit, a *Architecture, opts Options) (*Result, error) {
	if m.closed.Load() {
		return nil, ErrMapperClosed
	}
	ctx, cancel := m.withDefaultTimeout(ctx)
	defer cancel()
	return m.mapPipeline(ctx, c, a, opts)
}

// withDefaultTimeout applies the instance's default timeout when the
// context does not already carry a deadline.
func (m *Mapper) withDefaultTimeout(ctx context.Context) (context.Context, context.CancelFunc) {
	if m.timeout > 0 {
		if _, ok := ctx.Deadline(); !ok {
			return context.WithTimeout(ctx, m.timeout)
		}
	}
	return ctx, func() {}
}

// CacheStats reports both tiers of the instance's result cache: the
// in-memory LRU's cumulative hits/misses and entry count, and — when a
// persistent store is attached (WithStore) — the disk tier's operation
// counters and physical layout.
type CacheStats struct {
	Hits, Misses uint64
	Entries      int
	// DiskEnabled reports whether a persistent store is attached; the
	// remaining fields are zero when it is not.
	DiskEnabled bool
	// DiskHits/DiskMisses/DiskWrites count store lookups that found a
	// record, lookups that fell through to a solve, and records written.
	DiskHits, DiskMisses, DiskWrites uint64
	// DiskRecords/DiskSegments/DiskLiveBytes/DiskDeadBytes describe the
	// store's physical layout; DiskCompactions counts completed
	// compaction passes since the store was opened.
	DiskRecords     int
	DiskSegments    int
	DiskLiveBytes   int64
	DiskDeadBytes   int64
	DiskCompactions uint64
}

// CacheStats returns a snapshot of the instance's two-tier result-cache
// counters. Two Mapper instances never share these: a hit on one leaves
// the other's statistics untouched.
func (m *Mapper) CacheStats() CacheStats {
	hits, misses := m.cache.Stats()
	cs := CacheStats{Hits: hits, Misses: misses, Entries: m.cache.Len()}
	if m.store != nil {
		st := m.store.Stats()
		cs.DiskEnabled = true
		cs.DiskHits = st.Hits
		cs.DiskMisses = st.Gets - st.Hits
		cs.DiskWrites = st.Puts
		cs.DiskRecords = st.Records
		cs.DiskSegments = st.Segments
		cs.DiskLiveBytes = st.LiveBytes
		cs.DiskDeadBytes = st.DeadBytes
		cs.DiskCompactions = st.Compactions
	}
	return cs
}

// Totals are the mapper's cumulative pipeline counters since construction,
// aggregated over every Map/MapWith call and async job: how many trips ran
// and failed, where cache hits were served from, and the SAT work behind
// the solved ones. A service exposes these as monotonic metrics.
type Totals struct {
	// Maps counts completed pipeline trips (successful or not); Errors
	// the subset that returned an error.
	Maps, Errors uint64
	// MemoryHits and DiskHits count trips answered by the respective
	// cache tier.
	MemoryHits, DiskHits uint64
	// SATSolves/SATEncodes/SATConflicts/BoundProbes aggregate the solver
	// counters of every trip (zero contribution from cache hits and
	// heuristic methods).
	SATSolves, SATEncodes uint64
	SATConflicts          uint64
	BoundProbes           uint64
	// DegradedAnytime and DegradedHeuristic count successful trips that
	// the degradation ladder softened (Options.Ladder): anytime
	// incumbents and heuristic fallback plans respectively. Both are a
	// strict subset of Maps − Errors.
	DegradedAnytime   uint64
	DegradedHeuristic uint64
}

// Totals returns a snapshot of the mapper's cumulative work counters.
func (m *Mapper) Totals() Totals {
	return Totals{
		Maps:         m.totMaps.Load(),
		Errors:       m.totErrors.Load(),
		MemoryHits:   m.totMemHits.Load(),
		DiskHits:     m.totDiskHits.Load(),
		SATSolves:    m.totSolves.Load(),
		SATEncodes:   m.totEncodes.Load(),
		SATConflicts: m.totConflicts.Load(),
		BoundProbes:  m.totProbes.Load(),

		DegradedAnytime:   m.totDegAny.Load(),
		DegradedHeuristic: m.totDegHeur.Load(),
	}
}

// recordTotals folds one finished pipeline trip into the cumulative
// counters.
func (m *Mapper) recordTotals(res *Result, err error) {
	m.totMaps.Add(1)
	if err != nil {
		m.totErrors.Add(1)
		return
	}
	switch res.CacheTier {
	case portfolio.TierMemory:
		m.totMemHits.Add(1)
	case portfolio.TierDisk:
		m.totDiskHits.Add(1)
	}
	m.totSolves.Add(uint64(res.Stats.SATSolves))
	m.totEncodes.Add(uint64(res.Stats.SATEncodes))
	m.totConflicts.Add(uint64(res.Stats.SATConflicts))
	m.totProbes.Add(uint64(res.Stats.BoundProbes))
	switch res.Stats.Degradation {
	case portfolio.DegradationAnytime:
		m.totDegAny.Add(1)
	case portfolio.DegradationHeuristic:
		m.totDegHeur.Add(1)
	}
}

// QueueStats is a point-in-time view of the async scheduler and the
// pipeline load: jobs parked in the bounded queue, the queue's capacity,
// the worker-pool bound, and pipelines executing right now (synchronous
// calls included — InFlight can exceed Workers under concurrent Map use).
type QueueStats struct {
	Depth    int
	Capacity int
	Workers  int
	InFlight int
}

// QueueStats returns a snapshot of the scheduler queue and pipeline load.
func (m *Mapper) QueueStats() QueueStats {
	return QueueStats{
		Depth:    len(m.queue),
		Capacity: cap(m.queue),
		Workers:  m.workers,
		InFlight: int(m.inflight.Load()),
	}
}

// Store returns the attached persistent result store, or nil. Callers may
// trigger maintenance (Store.Compact, Store.Sync) but must not Close it —
// the Mapper owns its lifecycle.
func (m *Mapper) Store() *store.Store { return m.store }

// Close shuts the mapper down: new Submits fail with ErrMapperClosed,
// running jobs are cancelled, jobs still queued finish with
// ErrMapperClosed, and the persistent store (if attached) is synced and
// closed. Close blocks until the worker pool has drained and is
// idempotent.
func (m *Mapper) Close() error {
	if m.closed.Swap(true) {
		return nil
	}
	m.lifeCancel()
	// Exclude in-flight Submits, then stop the pool and fail the backlog.
	m.submitMu.Lock()
	defer m.submitMu.Unlock()
	m.wg.Wait()
	for {
		select {
		case h := <-m.queue:
			h.finish(nil, ErrMapperClosed)
		default:
			if m.store != nil {
				return m.store.Close()
			}
			return nil
		}
	}
}

// JobState is the lifecycle position of an asynchronous job.
type JobState int

const (
	// JobQueued: submitted, waiting for a scheduler slot.
	JobQueued JobState = iota
	// JobRunning: executing on a worker.
	JobRunning
	// JobDone: finished — successfully, with an error, or cancelled.
	JobDone
)

// String returns the state's wire name ("queued", "running", "done").
func (s JobState) String() string {
	switch s {
	case JobQueued:
		return "queued"
	case JobRunning:
		return "running"
	case JobDone:
		return "done"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// JobStats is a point-in-time snapshot of one asynchronous job: its state,
// how long it waited in the queue, how long it has been (or was) running,
// and — once successfully done — the pipeline Stats of its Result.
type JobStats struct {
	State JobState
	// Queued is the time between Submit and the job starting (or now,
	// while still waiting).
	Queued time.Duration
	// Run is the execution time so far (final once State is JobDone).
	Run time.Duration
	// Pipeline echoes Result.Stats for a successfully finished job.
	Pipeline Stats
}

// JobHandle tracks one asynchronous mapping job submitted with
// Mapper.Submit. All methods are safe for concurrent use.
type JobHandle struct {
	id     uint64
	job    Job
	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}

	mu        sync.Mutex
	state     JobState
	submitted time.Time
	started   time.Time
	finished  time.Time
	res       *Result
	err       error
}

// ID returns the job's mapper-unique identifier.
func (h *JobHandle) ID() uint64 { return h.id }

// Job returns the submitted job.
func (h *JobHandle) Job() Job { return h.job }

// Done returns a channel closed when the job finishes (in any way).
func (h *JobHandle) Done() <-chan struct{} { return h.done }

// Cancel aborts the job: a queued job finishes without running, a running
// job is interrupted through context cancellation. Cancel is idempotent
// and safe after completion.
func (h *JobHandle) Cancel() { h.cancel() }

// Wait blocks until the job finishes or ctx expires, returning the job's
// Result/error. Waiting does not consume the result: any number of callers
// may Wait on the same handle.
func (h *JobHandle) Wait(ctx context.Context) (*Result, error) {
	select {
	case <-h.done:
		h.mu.Lock()
		defer h.mu.Unlock()
		return h.res, h.err
	case <-ctx.Done():
		return nil, fmt.Errorf("qxmap: waiting for job %d: %w", h.id, ctx.Err())
	}
}

// Stats returns a snapshot of the job's timing and state.
func (h *JobHandle) Stats() JobStats {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := JobStats{State: h.state}
	switch h.state {
	case JobQueued:
		s.Queued = time.Since(h.submitted)
	case JobRunning:
		s.Queued = h.started.Sub(h.submitted)
		s.Run = time.Since(h.started)
	case JobDone:
		s.Queued = h.started.Sub(h.submitted)
		s.Run = h.finished.Sub(h.started)
		if h.res != nil {
			s.Pipeline = h.res.Stats
		}
	}
	return s
}

// markRunning transitions the handle to JobRunning.
func (h *JobHandle) markRunning() {
	h.mu.Lock()
	h.state = JobRunning
	h.started = time.Now()
	h.mu.Unlock()
}

// finish records the outcome exactly once and closes the done channel.
func (h *JobHandle) finish(res *Result, err error) {
	h.mu.Lock()
	if h.state == JobDone {
		h.mu.Unlock()
		return
	}
	h.state = JobDone
	h.finished = time.Now()
	if h.started.IsZero() {
		// Never ran: the whole lifetime was queue wait, zero run time.
		h.started = h.finished
	}
	h.res, h.err = res, err
	h.mu.Unlock()
	h.cancel() // release the job context's resources
	close(h.done)
}

// Submit enqueues an asynchronous mapping job and returns its handle. The
// job's Opts are used verbatim (start from Mapper.Options() to adopt the
// instance defaults). The scheduler is bounded: when the queue is full,
// Submit blocks until a slot frees, ctx expires, or the mapper closes. The
// job executes under a context derived from ctx — cancelling ctx, calling
// JobHandle.Cancel, or closing the mapper aborts it; the instance's
// default timeout (if any) starts when execution starts.
func (m *Mapper) Submit(ctx context.Context, job Job) (*JobHandle, error) {
	m.submitMu.RLock()
	defer m.submitMu.RUnlock()
	if m.closed.Load() {
		return nil, ErrMapperClosed
	}
	m.startOnce.Do(m.startWorkers)
	h := m.newHandle(ctx, job)
	select {
	case m.queue <- h:
		return h, nil
	case <-m.lifeCtx.Done():
		h.cancel()
		return nil, ErrMapperClosed
	case <-ctx.Done():
		h.cancel()
		return nil, fmt.Errorf("qxmap: submit: %w", ctx.Err())
	}
}

// TrySubmit enqueues like Submit but never blocks: when the scheduler
// queue has no free slot it returns ErrQueueFull immediately. Service
// frontends use it to convert backpressure into a retryable rejection
// instead of a handler goroutine parked on a full queue.
func (m *Mapper) TrySubmit(ctx context.Context, job Job) (*JobHandle, error) {
	m.submitMu.RLock()
	defer m.submitMu.RUnlock()
	if m.closed.Load() {
		return nil, ErrMapperClosed
	}
	m.startOnce.Do(m.startWorkers)
	h := m.newHandle(ctx, job)
	select {
	case m.queue <- h:
		return h, nil
	case <-m.lifeCtx.Done():
		h.cancel()
		return nil, ErrMapperClosed
	default:
		h.cancel()
		return nil, ErrQueueFull
	}
}

// newHandle builds a queued JobHandle whose context derives from ctx.
func (m *Mapper) newHandle(ctx context.Context, job Job) *JobHandle {
	jctx, cancel := context.WithCancel(ctx)
	return &JobHandle{
		id:        m.nextID.Add(1),
		job:       job,
		ctx:       jctx,
		cancel:    cancel,
		done:      make(chan struct{}),
		submitted: time.Now(),
		state:     JobQueued,
	}
}

// startWorkers launches the scheduler pool (once, on first Submit).
func (m *Mapper) startWorkers() {
	for i := 0; i < m.workers; i++ {
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			m.workLoop()
		}()
	}
}

// workLoop drains the queue until the mapper closes.
func (m *Mapper) workLoop() {
	for {
		select {
		case <-m.lifeCtx.Done():
			return
		case h := <-m.queue:
			m.runHandle(h)
		}
	}
}

// runHandle executes one queued job on a worker. A panic escaping the
// pipeline's own recover boundary (or the handle bookkeeping) fails the
// job rather than the worker goroutine: the scheduler must keep draining
// whatever one poisoned job does.
func (m *Mapper) runHandle(h *JobHandle) {
	defer func() {
		if r := recover(); r != nil {
			h.finish(nil, fmt.Errorf("qxmap: job panicked: %v", r))
		}
	}()
	// A worker's select may dequeue a job even after Close cancelled
	// lifeCtx; honor the Close contract (queued jobs fail with
	// ErrMapperClosed, not a generic cancellation) before starting it.
	if m.lifeCtx.Err() != nil {
		h.finish(nil, ErrMapperClosed)
		return
	}
	if err := h.ctx.Err(); err != nil {
		h.finish(nil, fmt.Errorf("qxmap: job canceled before start: %w", err))
		return
	}
	h.markRunning()
	// Closing the mapper aborts running jobs too.
	stop := context.AfterFunc(m.lifeCtx, h.cancel)
	defer stop()
	ctx, cancel := m.withDefaultTimeout(h.ctx)
	defer cancel()
	res, err := m.mapPipeline(ctx, h.job.Circuit, h.job.Arch, h.job.Opts)
	h.finish(res, err)
}

// Default mapper: the package-level Map/MapContext/MapBatch wrappers
// delegate to this lazily-initialized instance, preserving the historical
// process-wide shared-cache behavior. It is the only package-level mutable
// state in qxmap.
var (
	defaultMapper     *Mapper
	defaultMapperOnce sync.Once
)

// Default returns the process-wide default Mapper used by the package-level
// Map, MapContext and MapBatch wrappers: zero-option configuration, shared
// portfolio cache, lazily initialized on first use. New code that needs
// isolation (its own cache, worker bound or timeout) should create its own
// instance with NewMapper instead.
func Default() *Mapper {
	defaultMapperOnce.Do(func() {
		defaultMapper, _ = NewMapper() // no options: cannot fail
	})
	return defaultMapper
}
