package qxmap

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/circuit"
	"repro/internal/perm"
)

// materialize produces the final executable circuit (paper Fig. 5) from
// the original circuit, its skeleton, and the mapped op stream: single-
// qubit gates follow their logical qubit's current physical position, SWAP
// ops expand into 3 CNOTs + direction-fixing H gates (7 elementary gates on
// the antisymmetric IBM coupling maps, Fig. 3), and switched CNOTs are
// wrapped in 4 H gates. It returns the mapped circuit and the final layout.
func materialize(orig *Circuit, sk *circuit.Skeleton, a *arch.Arch,
	ops []circuit.MappedOp, initial perm.Mapping) (*Circuit, perm.Mapping, error) {

	out := circuit.New(a.NumQubits())
	if name := orig.Name(); name != "" {
		out.SetName(name + "@" + a.Name())
	}
	mp := initial.Copy()
	opIdx := 0
	nextCNOT := 0 // index into skeleton gates

	emitCNOT := func(control, target int) error {
		switch {
		case a.Allows(control, target):
			out.AddCNOT(control, target)
		case a.Allows(target, control):
			// Direction fix with 4 H gates (paper Fig. 3).
			out.AddH(control).AddH(target)
			out.AddCNOT(target, control)
			out.AddH(control).AddH(target)
		default:
			return fmt.Errorf("qxmap: internal error: CNOT(p%d,p%d) not executable on %s", control, target, a.Name())
		}
		return nil
	}

	for origIdx, g := range orig.Gates() {
		if g.Kind.IsSingleQubit() {
			ng := g.Copy()
			ng.Qubits[0] = mp[g.Qubits[0]]
			out.MustAppend(ng)
			continue
		}
		// A CNOT (skeleton gate nextCNOT): first drain any SWAP ops
		// scheduled before it.
		if nextCNOT >= sk.Len() || sk.Gates[nextCNOT].Index != origIdx {
			return nil, nil, fmt.Errorf("qxmap: internal error: gate %d is not the expected skeleton gate", origIdx)
		}
		for opIdx < len(ops) && ops[opIdx].Swap {
			op := ops[opIdx]
			opIdx++
			// SWAP(a,b) = CNOT·CNOT·CNOT with the middle one reversed;
			// emitCNOT inserts H fixes as dictated by the coupling map.
			if err := emitCNOT(op.A, op.B); err != nil {
				return nil, nil, err
			}
			if err := emitCNOT(op.B, op.A); err != nil {
				return nil, nil, err
			}
			if err := emitCNOT(op.A, op.B); err != nil {
				return nil, nil, err
			}
			mp = mp.ApplySwap(op.A, op.B)
		}
		if opIdx >= len(ops) {
			return nil, nil, fmt.Errorf("qxmap: internal error: op stream exhausted at gate %d", origIdx)
		}
		op := ops[opIdx]
		opIdx++
		if op.Swap || op.GateIndex != nextCNOT {
			return nil, nil, fmt.Errorf("qxmap: internal error: op %d out of order", opIdx-1)
		}
		if op.Switched {
			out.AddH(op.Control).AddH(op.Target)
			out.AddCNOT(op.Control, op.Target)
			out.AddH(op.Control).AddH(op.Target)
		} else {
			out.AddCNOT(op.Control, op.Target)
		}
		nextCNOT++
	}
	// Trailing SWAP ops (possible when a permutation point coincides with
	// the end; normally absent because they would be pure overhead).
	for opIdx < len(ops) {
		op := ops[opIdx]
		opIdx++
		if !op.Swap {
			return nil, nil, fmt.Errorf("qxmap: internal error: unconsumed CNOT op")
		}
		if err := emitCNOT(op.A, op.B); err != nil {
			return nil, nil, err
		}
		if err := emitCNOT(op.B, op.A); err != nil {
			return nil, nil, err
		}
		if err := emitCNOT(op.A, op.B); err != nil {
			return nil, nil, err
		}
		mp = mp.ApplySwap(op.A, op.B)
	}
	return out, mp, nil
}
