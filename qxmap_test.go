package qxmap

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/verify"
)

func TestMapFigure1aMatchesPaperExample7(t *testing.T) {
	// The central headline check: mapping the paper's running example to
	// IBM QX4 costs exactly F = 4 (Fig. 5), and the result is a verified-
	// equivalent, coupling-compliant circuit.
	for _, engine := range []Engine{EngineSAT, EngineDP} {
		res, err := Map(Figure1a(), QX4(), Options{Engine: engine})
		if err != nil {
			t.Fatalf("engine %d: %v", engine, err)
		}
		if res.Cost != 4 {
			t.Fatalf("engine %d: cost = %d, want 4", engine, res.Cost)
		}
		if !res.Minimal {
			t.Error("exact method should report Minimal")
		}
		// F = 4 means one direction switch, no SWAPs: mapped size is
		// original (8) + 4 H.
		if res.Swaps != 0 || res.Switches != 1 {
			t.Errorf("swaps=%d switches=%d, want 0,1", res.Swaps, res.Switches)
		}
		if res.TotalGates() != 12 {
			t.Errorf("mapped gates = %d, want 12", res.TotalGates())
		}
	}
}

func TestMapAllMethodsVerify(t *testing.T) {
	c := Figure1a()
	a := QX4()
	costs := map[Method]int{}
	for m := MethodExact; m <= MethodHeuristic; m++ {
		opts := Options{Method: m, Engine: EngineDP, Seed: 7}
		res, err := Map(c, a, opts)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		costs[m] = res.Cost
		// Verification is on by default; double-check compliance anyway.
		if err := verify.CouplingCompliant(res.Mapped, a); err != nil {
			t.Errorf("%v: %v", m, err)
		}
	}
	// Paper Example 10: every restricted strategy still reaches F = 4 on
	// the running example; the heuristic may be worse.
	for _, m := range []Method{MethodExact, MethodExactSubsets, MethodDisjoint, MethodOdd, MethodTriangle} {
		if costs[m] != 4 {
			t.Errorf("%v: cost = %d, want 4", m, costs[m])
		}
	}
	if costs[MethodHeuristic] < 4 {
		t.Errorf("heuristic cost %d beats the minimum", costs[MethodHeuristic])
	}
}

func TestMapCircuitWithoutCNOTs(t *testing.T) {
	c := NewCircuit(3).AddH(0).AddT(1).AddX(2)
	res, err := Map(c, QX4(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != 0 || res.TotalGates() != 3 {
		t.Errorf("cost=%d gates=%d", res.Cost, res.TotalGates())
	}
	if !res.InitialLayout.Equal(res.FinalLayout) {
		t.Error("layout should be unchanged")
	}
}

func TestMapRejectsOversizedCircuit(t *testing.T) {
	c := NewCircuit(6).AddCNOT(0, 5)
	if _, err := Map(c, QX4(), Options{}); err == nil {
		t.Error("6 qubits on QX4 should fail")
	}
}

func TestMapRejectsNonElementary(t *testing.T) {
	c := NewCircuit(3).AddMCT([]int{0, 1}, 2)
	if _, err := Map(c, QX4(), Options{}); err == nil {
		t.Error("MCT should be rejected (decompose first)")
	}
}

func TestMapQASMRoundTrip(t *testing.T) {
	src := `OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
h q[0];
cx q[0],q[1];
cx q[1],q[2];
cx q[2],q[0];
t q[2];
`
	c, err := ParseQASM(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Map(c, QX4(), Options{Engine: EngineDP})
	if err != nil {
		t.Fatal(err)
	}
	out, err := WriteQASM(res.Mapped)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "qreg q[5];") {
		t.Errorf("mapped QASM should declare 5 qubits:\n%s", out)
	}
	back, err := ParseQASM(out)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != res.Mapped.Len() {
		t.Error("QASM round trip changed gate count")
	}
}

func TestMapOnQX5ViaSubsets(t *testing.T) {
	// 16-qubit device: exact methods need the subset optimization.
	c := NewCircuit(3).AddCNOT(0, 1).AddCNOT(1, 2).AddCNOT(0, 2)
	res, err := Map(c, QX5(), Options{Method: MethodExactSubsets, Engine: EngineDP})
	if err != nil {
		t.Fatal(err)
	}
	if err := verify.CouplingCompliant(res.Mapped, QX5()); err != nil {
		t.Fatal(err)
	}
	if res.Mapped.NumQubits() != 16 {
		t.Errorf("mapped over %d qubits", res.Mapped.NumQubits())
	}
}

func TestHeuristicNeverBelowExact(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		c := NewCircuit(4).
			AddCNOT(0, 1).AddCNOT(2, 3).AddCNOT(0, 2).
			AddCNOT(1, 3).AddCNOT(0, 3).AddCNOT(1, 2)
		ex, err := Map(c, QX4(), Options{Engine: EngineDP})
		if err != nil {
			t.Fatal(err)
		}
		h, err := Map(c, QX4(), Options{Method: MethodHeuristic, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if h.Cost < ex.Cost {
			t.Fatalf("seed %d: heuristic %d < exact %d", seed, h.Cost, ex.Cost)
		}
	}
}

func TestParseMethodAndStrings(t *testing.T) {
	for i, name := range methodNames {
		m := Method(i)
		if m.String() != name {
			t.Errorf("%d.String() = %q", i, m.String())
		}
		got, err := ParseMethod(name)
		if err != nil || got != m {
			t.Errorf("ParseMethod(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseMethod("bogus"); err == nil {
		t.Error("bogus method should fail")
	}
}

// TestMethodsMatchesRegistry pins the contract between the Method enum and
// the solver registry: the registry's canonical listing starts with the
// eight built-ins in constant order, so Method(i) ↔ Methods()[i].
func TestMethodsMatchesRegistry(t *testing.T) {
	reg := Methods()
	if len(reg) < len(methodNames) {
		t.Fatalf("registry lists %d methods, enum has %d", len(reg), len(methodNames))
	}
	for i, name := range methodNames {
		if reg[i] != name {
			t.Errorf("Methods()[%d] = %q, enum says %q", i, reg[i], name)
		}
	}
}

// TestParseMethodErrorListsValidNames: a bad -method flag must tell the
// user what the valid names are.
func TestParseMethodErrorListsValidNames(t *testing.T) {
	_, err := ParseMethod("bogus")
	if err == nil {
		t.Fatal("bogus method should fail")
	}
	for _, name := range Methods() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not mention %q", err, name)
		}
	}
}

func TestParseEngineRoundTrips(t *testing.T) {
	for _, e := range []Engine{EngineSAT, EngineDP} {
		got, err := ParseEngine(e.String())
		if err != nil || got != e {
			t.Errorf("ParseEngine(%q) = %v, %v", e.String(), got, err)
		}
	}
	if _, err := ParseEngine("z3"); err == nil {
		t.Error("unknown engine should fail")
	}
}

func TestNewArch(t *testing.T) {
	a, err := NewArch("tri", 3, [][2]int{{0, 1}, {1, 2}, {0, 2}})
	if err != nil {
		t.Fatal(err)
	}
	c := NewCircuit(3).AddCNOT(0, 1).AddCNOT(2, 1)
	res, err := Map(c, a, Options{Engine: EngineDP})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost > 4 {
		t.Errorf("cost = %d on fully-coupled triangle", res.Cost)
	}
}

func TestSATBudgetGracefulDegradation(t *testing.T) {
	c := Figure1a()
	// A hopeless budget must fail with a clear error, not a bogus
	// "unsatisfiable" claim.
	if _, err := Map(c, QX4(), Options{SATMaxConflicts: 1}); err == nil ||
		!strings.Contains(err.Error(), "budget") {
		t.Errorf("tiny budget: err = %v, want budget-exhausted error", err)
	}
	// A budget generous enough for the whole descent completes the UNSAT
	// proof, so minimality IS established despite the budget — the flag
	// reports what the run proved, not what the config allowed.
	res, err := Map(c, QX4(), Options{SATMaxConflicts: 100000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Minimal {
		t.Error("budgeted run that completed its descent must report proven minimality")
	}
	if res.Cost != 4 {
		t.Errorf("cost %d, want the true minimum 4", res.Cost)
	}
	if res.Stats.SATEncodes != 1 {
		t.Errorf("SATEncodes = %d, want 1 (incremental descent)", res.Stats.SATEncodes)
	}
}

func TestMapWithOptimize(t *testing.T) {
	// A circuit with redundancy the mapper preserves but the optimizer
	// removes: back-to-back H pairs around a CNOT chain.
	c := NewCircuit(3).
		AddH(0).AddH(0). // cancels
		AddCNOT(0, 1).AddCNOT(1, 2).
		AddT(2).AddTdg(2) // cancels
	plain, err := Map(c, QX4(), Options{Engine: EngineDP})
	if err != nil {
		t.Fatal(err)
	}
	optimized, err := Map(c, QX4(), Options{Engine: EngineDP, Optimize: true})
	if err != nil {
		t.Fatal(err)
	}
	if optimized.GatesOptimizedAway < 4 {
		t.Errorf("optimized away %d gates, want ≥ 4", optimized.GatesOptimizedAway)
	}
	if optimized.TotalGates() >= plain.TotalGates() {
		t.Errorf("optimize did not shrink: %d vs %d", optimized.TotalGates(), plain.TotalGates())
	}
	// Both verified equivalent by Map itself (verification on).
}

func TestMapOnTokyoBidirectional(t *testing.T) {
	// Tokyo's couplings are bidirectional: direction switches are never
	// needed, so any mapping's cost is a multiple of 7.
	c := NewCircuit(4).
		AddCNOT(0, 1).AddCNOT(1, 0).AddCNOT(2, 3).AddCNOT(3, 2)
	res, err := Map(c, Tokyo(), Options{Method: MethodExactSubsets, Engine: EngineDP})
	if err != nil {
		t.Fatal(err)
	}
	if res.Switches != 0 {
		t.Errorf("switches = %d on bidirectional arch", res.Switches)
	}
	if res.Cost != 0 {
		t.Errorf("cost = %d, want 0 (adjacent pairs exist)", res.Cost)
	}
}

func TestMapAStarMethod(t *testing.T) {
	res, err := Map(Figure1a(), QX4(), Options{Method: MethodAStar, Lookahead: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost < 4 {
		t.Errorf("A* cost %d below minimum 4", res.Cost)
	}
	if res.Minimal {
		t.Error("A* must not claim minimality")
	}
}

func TestDepthReporting(t *testing.T) {
	c := Figure1a()
	res, err := Map(c, QX4(), Options{Engine: EngineDP})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mapped.Depth() < c.Depth() {
		t.Errorf("mapped depth %d below original %d", res.Mapped.Depth(), c.Depth())
	}
	if res.Mapped.TwoQubitDepth() < c.TwoQubitDepth() {
		t.Errorf("mapped 2q depth shrank")
	}
}

func TestMapWithInitialLayout(t *testing.T) {
	c := NewCircuit(2).AddCNOT(0, 1)
	// Free: cost 0. Pinned to the reversed coupling direction: 4.
	free, err := Map(c, QX4(), Options{Engine: EngineDP})
	if err != nil {
		t.Fatal(err)
	}
	if free.Cost != 0 {
		t.Fatalf("free cost = %d", free.Cost)
	}
	pinned, err := Map(c, QX4(), Options{Engine: EngineDP, InitialLayout: []int{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if pinned.Cost != 4 {
		t.Errorf("pinned cost = %d, want 4", pinned.Cost)
	}
	if pinned.InitialLayout[0] != 0 || pinned.InitialLayout[1] != 1 {
		t.Errorf("layout not pinned: %v", pinned.InitialLayout)
	}
	// Heuristic honors the pin as its starting point.
	h, err := Map(c, QX4(), Options{Method: MethodHeuristic, InitialLayout: []int{1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if h.Cost != 0 {
		t.Errorf("heuristic pinned-to-good-layout cost = %d", h.Cost)
	}
	// Subsets reject the pin.
	if _, err := Map(c, QX4(), Options{Method: MethodExactSubsets, InitialLayout: []int{0, 1}}); err == nil {
		t.Error("subsets + pin should fail")
	}
}

func TestMapSabreMethod(t *testing.T) {
	res, err := Map(Figure1a(), QX4(), Options{Method: MethodSabre})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost < 4 {
		t.Errorf("sabre cost %d below minimum", res.Cost)
	}
	if _, err := Map(Figure1a(), QX4(), Options{Method: MethodSabre, InitialLayout: []int{0, 1, 2, 3}}); err == nil {
		t.Error("sabre + InitialLayout should fail")
	}
	// A* now honors pinned layouts.
	pinned, err := Map(NewCircuit(2).AddCNOT(0, 1), QX4(),
		Options{Method: MethodAStar, InitialLayout: []int{1, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if pinned.Cost != 0 {
		t.Errorf("A* pinned-to-coupled-pair cost = %d", pinned.Cost)
	}
}

// TestMapPortfolio routes the running example through the portfolio layer:
// the cost must equal the lone exact engine's minimum, and a repeated call
// on the identical instance must be served from the process-wide cache.
func TestMapPortfolio(t *testing.T) {
	c := Figure1a()
	a := QX4()
	lone, err := Map(c, a, Options{Engine: EngineDP})
	if err != nil {
		t.Fatal(err)
	}
	first, err := Map(c, a, Options{Portfolio: true})
	if err != nil {
		t.Fatal(err)
	}
	if first.Cost != lone.Cost {
		t.Errorf("portfolio cost = %d, lone engine = %d", first.Cost, lone.Cost)
	}
	if !first.Minimal {
		t.Error("portfolio result not flagged minimal")
	}
	second, err := Map(c, a, Options{Portfolio: true})
	if err != nil {
		t.Fatal(err)
	}
	if !second.CacheHit {
		t.Error("identical instance missed the portfolio cache")
	}
	if second.Cost != first.Cost {
		t.Errorf("cached cost %d != first cost %d", second.Cost, first.Cost)
	}
}

// TestMapContextCancelled covers the public context plumbing end to end.
func TestMapContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, opts := range []Options{{}, {Portfolio: true}} {
		if _, err := MapContext(ctx, Figure1a(), QX4(), opts); !errors.Is(err, context.Canceled) {
			t.Errorf("Portfolio=%v: err = %v, want context.Canceled", opts.Portfolio, err)
		}
	}
}

// TestStatsDescentCountersFlow: the SAT descent's BoundProbes/BoundJumps/
// LowerBound counters must surface in Result.Stats, and SATNoLowerBound
// must zero the reported seed without changing the cost.
func TestStatsDescentCountersFlow(t *testing.T) {
	c := NewCircuit(4)
	c.AddCNOT(0, 1)
	c.AddCNOT(2, 3)
	c.AddCNOT(0, 2)
	c.AddCNOT(1, 3)
	c.AddCNOT(0, 3)
	c.AddCNOT(1, 2)
	seeded, err := Map(c, QX4(), Options{Engine: EngineSAT})
	if err != nil {
		t.Fatal(err)
	}
	if seeded.Stats.BoundProbes == 0 {
		t.Error("SAT run reported no bound probes")
	}
	if seeded.Stats.LowerBound <= 0 {
		t.Errorf("K4 interactions on QX4 should have a positive lower bound, got %d", seeded.Stats.LowerBound)
	}
	off, err := Map(c, QX4(), Options{Engine: EngineSAT, SATNoLowerBound: true})
	if err != nil {
		t.Fatal(err)
	}
	if off.Stats.LowerBound != 0 {
		t.Errorf("SATNoLowerBound run reported LowerBound = %d, want 0", off.Stats.LowerBound)
	}
	if off.Cost != seeded.Cost || !off.Minimal || !seeded.Minimal {
		t.Errorf("lower-bound seeding changed the outcome: %d/%v vs %d/%v",
			seeded.Cost, seeded.Minimal, off.Cost, off.Minimal)
	}
	if seeded.Stats.SATEncodes != 1 || off.Stats.SATEncodes != 1 {
		t.Errorf("encodes = %d/%d, want 1/1", seeded.Stats.SATEncodes, off.Stats.SATEncodes)
	}
}
